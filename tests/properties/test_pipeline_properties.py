"""Property-based differential testing: pipeline vs the golden model.

Random SSA kernels (with hoisted constants to force register pressure) are
compiled for aggressive AVA configurations and executed both on the
architectural golden model and on the full pipeline with the two-level VRF,
swap mechanism, chaining and reclamation active.  Output buffers must match
bit-for-bit and the pipeline must terminate — together these pin the
correctness of every renaming/swap interleaving hypothesis explores.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Simulator, ava_config, rg_config
from repro.isa.builder import KernelBuilder
from repro.sim.golden import GoldenExecutor
from tests.conftest import compile_kernel


@st.composite
def kernels(draw):
    kb = KernelBuilder()
    n_consts = draw(st.integers(min_value=0, max_value=20))
    consts = [kb.const(1.0 + 0.05 * i) for i in range(n_consts)]
    values = [kb.load("a"), kb.load("b")]
    pool = values + consts
    n_ops = draw(st.integers(min_value=3, max_value=25))
    for _ in range(n_ops):
        kind = draw(st.integers(0, 3))
        x = draw(st.sampled_from(pool))
        y = draw(st.sampled_from(pool))
        if kind == 0:
            pool.append(kb.add(x, y))
        elif kind == 1:
            pool.append(kb.mul(x, y))
        elif kind == 2:
            pool.append(kb.sub(x, y))
        else:
            pool.append(kb.fmadd(x, y, draw(st.sampled_from(pool))))
    kb.store(pool[-1], "out")
    kb.store(draw(st.sampled_from(pool)), "out2")
    return kb.build()


def _run_both(body, config, n=128):
    program = compile_kernel(body, config, n,
                             {"a": n, "b": n, "out": n, "out2": n})
    rng = np.random.default_rng(99)
    a = rng.uniform(0.5, 1.5, n)
    b = rng.uniform(0.5, 1.5, n)

    golden = GoldenExecutor(config, program)
    golden.set_data("a", a)
    golden.set_data("b", b)
    expected = golden.run()

    sim = Simulator(config, program, functional=True)
    sim.set_data("a", a)
    sim.set_data("b", b)
    result = sim.run(max_cycles=5_000_000)
    return result, expected


@given(body=kernels(), scale=st.sampled_from([2, 4, 8]))
@settings(max_examples=25, deadline=None)
def test_ava_matches_golden_model(body, scale):
    result, expected = _run_both(body, ava_config(scale))
    for name in ("out", "out2"):
        assert np.allclose(result.buffer(name), expected[name],
                           rtol=1e-9, atol=1e-12)


@given(body=kernels(), lmul=st.sampled_from([2, 4, 8]))
@settings(max_examples=15, deadline=None)
def test_rg_spill_code_matches_golden_model(body, lmul):
    result, expected = _run_both(body, rg_config(lmul))
    for name in ("out", "out2"):
        assert np.allclose(result.buffer(name), expected[name],
                           rtol=1e-9, atol=1e-12)


@given(body=kernels())
@settings(max_examples=10, deadline=None)
def test_swap_traffic_is_balanced(body):
    """Every swap-load was preceded by data reaching the M-VRF."""
    result, _ = _run_both(body, ava_config(8))
    s = result.stats
    # Loads can exceed stores (clean evictions re-load without re-storing)
    # but a load without *any* prior store of that VVR is impossible.
    if s.swap_loads > 0:
        assert s.swap_stores > 0
    assert s.mvrf_reads == s.swap_loads * 128
    assert s.mvrf_writes <= s.swap_stores * 128  # dead stores squash moves
