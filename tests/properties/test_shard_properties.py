"""Property tests for the sharding layer's algebraic guarantees.

The contracts cross-host sharding rests on: the partition is a pure
function of cell identity (disjoint, exhaustive, stable under grid
reordering — every host computes the same assignment), and the counter
merge is an associative, commutative monoid with ``ExecutorStats()`` as
identity, so per-shard counter files combine in any order and grouping.
"""

from dataclasses import fields

from hypothesis import given, settings, strategies as st

from repro.core.config import machine_names
from repro.experiments.engine import Cell, ExecutorStats
from repro.experiments.shard import (merge_stats, partition, shard_key,
                                     shard_of)
from repro.memory.presets import memory_system_names
from repro.sim.scenario import build_scenario
from repro.vpu.params import timing_names

# Sample the registries once so the strategies stay stable across examples.
_scenarios = st.builds(build_scenario,
                       machine=st.sampled_from(machine_names()),
                       memory=st.sampled_from(memory_system_names()),
                       timing=st.sampled_from(timing_names()))

_cells = st.builds(Cell.from_scenario,
                   st.sampled_from(["axpy", "blackscholes", "somier"]),
                   _scenarios,
                   warm=st.booleans(),
                   check=st.booleans())

_cell_lists = st.lists(_cells, min_size=0, max_size=30)

_shard_counts = st.integers(min_value=1, max_value=8)

_stats = st.builds(ExecutorStats, **{
    f.name: st.integers(min_value=0, max_value=10**9)
    for f in fields(ExecutorStats)})


@given(cells=_cell_lists, shards=_shard_counts)
@settings(max_examples=60, deadline=None)
def test_partition_is_disjoint_and_exhaustive(cells, shards):
    buckets = partition(cells, shards)
    assert len(buckets) == shards
    flat = sorted(i for bucket in buckets for i in bucket)
    assert flat == list(range(len(cells)))  # every position, exactly once


@given(cells=_cell_lists, shards=_shard_counts, data=st.data())
@settings(max_examples=40, deadline=None)
def test_partition_is_stable_under_reordering(cells, shards, data):
    """Membership is a pure function of the cell: permuting the grid
    permutes positions within buckets, never cells across them."""
    original = partition(cells, shards)
    shuffled = data.draw(st.permutations(cells))
    permuted = partition(shuffled, shards)
    for bucket, shuffled_bucket in zip(original, permuted):
        assert (sorted(shard_key(cells[i]) for i in bucket)
                == sorted(shard_key(shuffled[i]) for i in shuffled_bucket))


@given(cell=_cells, shards=_shard_counts)
@settings(max_examples=40, deadline=None)
def test_shard_of_is_deterministic_and_in_range(cell, shards):
    index = shard_of(cell, shards)
    assert 0 <= index < shards
    assert shard_of(cell, shards) == index  # no per-process hash seed
    # A round-trip through the cell's scenario keeps the assignment.
    clone = Cell.from_scenario(cell.workload_name, cell.scenario(),
                               functional=cell.functional, warm=cell.warm,
                               check=cell.check)
    assert shard_of(clone, shards) == index


@given(a=_stats, b=_stats, c=_stats)
@settings(max_examples=60, deadline=None)
def test_merge_stats_is_an_associative_commutative_monoid(a, b, c):
    assert merge_stats(a, merge_stats(b, c)) == \
        merge_stats(merge_stats(a, b), c)
    assert merge_stats(a, b) == merge_stats(b, a)
    assert merge_stats(a, ExecutorStats()) == a
    assert merge_stats(a) == a
    assert merge_stats() == ExecutorStats()


@given(stats=_stats)
@settings(max_examples=40, deadline=None)
def test_stats_survive_the_counter_file_round_trip(stats):
    """What --stats-json writes, repro merge reads back unchanged."""
    assert ExecutorStats.from_dict(stats.to_dict()) == stats
