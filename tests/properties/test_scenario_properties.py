"""Property tests for the scenario layer's round-trip guarantees.

The contract the result cache rests on: any scenario assembled from
registry names survives ``registry name -> Scenario -> cache key -> JSON
-> equal Scenario`` without drift — equal scenarios key identically, and
the JSON form is a lossless inverse.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core.config import machine_names
from repro.core.swap import VictimPolicy
from repro.experiments.engine import Cell, cell_key
from repro.memory.presets import memory_system_names
from repro.sim.scenario import CellPolicy, Scenario, build_scenario
from repro.vpu.params import timing_names
from repro.workloads import get_workload

# The registries are populated at import time; sampling the name lists
# once keeps the strategies stable across examples.
_MACHINES = st.sampled_from(machine_names())
_MEMORY = st.sampled_from(memory_system_names())
_TIMING = st.sampled_from(timing_names())
_POLICIES = st.builds(CellPolicy,
                      victim_policy=st.sampled_from(list(VictimPolicy)),
                      aggressive_reclamation=st.booleans())

_scenarios = st.builds(build_scenario, machine=_MACHINES, memory=_MEMORY,
                       timing=_TIMING, policy=_POLICIES)

# One compiled program per machine config is enough for key properties —
# memoized so Hypothesis examples don't recompile.
_PROGRAMS = {}


def _program_for(scenario: Scenario):
    config = scenario.machine
    if config not in _PROGRAMS:
        _PROGRAMS[config] = get_workload("axpy").compile(config).program
    return _PROGRAMS[config]


@given(scenario=_scenarios)
@settings(max_examples=60, deadline=None)
def test_scenario_round_trips_through_json(scenario):
    wire = json.dumps(scenario.to_dict(), sort_keys=True)
    assert Scenario.from_dict(json.loads(wire)) == scenario
    # Serialisation is deterministic: equal scenarios, equal wire form.
    assert json.dumps(scenario.to_dict(), sort_keys=True) == wire


@given(scenario=_scenarios)
@settings(max_examples=30, deadline=None)
def test_equal_scenarios_key_identically(scenario):
    program = _program_for(scenario)
    cell = Cell.from_scenario("axpy", scenario)
    clone = Cell.from_scenario(
        "axpy", Scenario.from_dict(json.loads(
            json.dumps(scenario.to_dict()))))
    assert cell_key(cell, program) == cell_key(clone, program)


@given(a=_scenarios, b=_scenarios)
@settings(max_examples=30, deadline=None)
def test_distinct_scenarios_never_collide(a, b):
    """Different scenario -> different cache key (same workload/program)."""
    if a.machine != b.machine:
        return  # different programs; the program hash already separates them
    program = _program_for(a)
    key_a = cell_key(Cell.from_scenario("axpy", a), program)
    key_b = cell_key(Cell.from_scenario("axpy", b), program)
    assert (key_a == key_b) == (a == b)
