"""Register Access Counters: the 3-bit usage counters of §III.C."""

import pytest

from repro.core.rac import RAC_MAX, RegisterAccessCounters


def test_increment_decrement():
    rac = RegisterAccessCounters(8)
    rac.increment(3)
    rac.increment(3)
    assert rac.count(3) == 2
    rac.decrement(3)
    assert rac.count(3) == 1


def test_underflow_is_a_protocol_violation():
    rac = RegisterAccessCounters(8)
    with pytest.raises(RuntimeError):
        rac.decrement(0)


def test_reclaimable_only_at_zero():
    rac = RegisterAccessCounters(8)
    assert rac.is_reclaimable(0)
    rac.increment(0)
    assert not rac.is_reclaimable(0)
    rac.decrement(0)
    assert rac.is_reclaimable(0)


def test_saturation_at_3_bits():
    rac = RegisterAccessCounters(8)
    for _ in range(RAC_MAX + 5):
        rac.increment(1)
    assert rac.count(1) == RAC_MAX
    # A saturated counter stops counting and is never trusted again...
    rac.decrement(1)
    assert rac.count(1) == RAC_MAX
    assert not rac.is_reclaimable(1)
    assert rac.min_positive([1]) is None
    # ...until it is reset.
    rac.reset(1)
    assert rac.count(1) == 0
    assert rac.is_reclaimable(1)


def test_min_positive_selection():
    """'1 is the lowest count for swaps, 0 is aggressive reclamation.'"""
    rac = RegisterAccessCounters(8)
    for vvr, count in ((0, 0), (1, 3), (2, 1), (3, 2)):
        for _ in range(count):
            rac.increment(vvr)
    assert rac.min_positive([0, 1, 2, 3]) == 2
    assert rac.min_positive([0]) is None  # zero counts are not swap victims
    assert rac.min_positive([]) is None


def test_min_positive_tie_breaks_deterministically():
    rac = RegisterAccessCounters(8)
    rac.increment(5)
    rac.increment(2)
    assert rac.min_positive([5, 2]) == 2
