"""Micro-architectural recovery (§III.D)."""

from repro.core.rac import RegisterAccessCounters
from repro.core.rat import RenameTable
from repro.core.recovery import RecoveryController
from repro.core.vrf import TwoLevelVRF
from repro.core.vrf_mapping import VRFMapping


def make_machine():
    rat = RenameTable(4, 16)
    rac = RegisterAccessCounters(16)
    mapping = VRFMapping(16, 8)
    vrf = TwoLevelVRF(16, 8, 16)
    return rat, rac, mapping, vrf, RecoveryController(rat, rac, mapping, vrf)


def test_recover_restores_rat_and_frees_speculative_vvrs():
    rat, rac, mapping, vrf, rc = make_machine()
    # One committed rename establishes the retirement state.
    new_c, old_c = rat.rename_destination(0)
    rat.commit(0, new_c, old_c)
    # Two speculative renames with allocated physical registers.
    spec1, _ = rat.rename_destination(1)
    spec2, _ = rat.rename_destination(2)
    mapping.allocate(spec1)
    mapping.allocate(spec2)
    vrf.mark_pending(spec1)
    rac.increment(spec1)
    free_before = mapping.free_count

    rc.recover([spec1, spec2])

    assert rat.lookup(0) == new_c
    assert rat.lookup(1) == 1 and rat.lookup(2) == 2
    assert mapping.free_count == free_before + 2
    assert rac.count(spec1) == 0  # §III.D: counters zeroed, not restored
    assert rc.recoveries == 1


def test_recover_restores_valid_bits():
    rat, rac, mapping, vrf, rc = make_machine()
    new_c, old_c = rat.rename_destination(0)
    vrf.mark_pending(new_c)
    vrf.commit_valid(new_c)
    rat.commit(0, new_c, old_c)
    vrf.mark_valid(new_c)  # speculative completion after the checkpoint
    spec, _ = rat.rename_destination(1)
    rc.recover([spec])
    assert not vrf.is_valid(new_c)


def test_recover_detects_inconsistent_squash_set():
    rat, rac, mapping, vrf, rc = make_machine()
    new_c, old_c = rat.rename_destination(0)
    rat.commit(0, new_c, old_c)
    # Claiming a *committed* VVR was squashed is a caller bug.
    try:
        rc.recover([new_c])
        raised = False
    except AssertionError:
        raised = True
    assert raised
