"""Micro-op dependency bookkeeping and the ordering invariant."""

import pytest

from repro.core.uop import MicroOp
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op


def arith_uop(seq=-1):
    return MicroOp(Instruction(op=Op.VADD, dst=0, srcs=(1, 2), vl=8),
                   seq=seq)


def test_validate_requires_seq():
    u = arith_uop()
    with pytest.raises(AssertionError):
        u.validate_ordering()


def test_validate_accepts_older_dependencies():
    old = arith_uop(seq=1)
    young = arith_uop(seq=2)
    young.attach_producer(old)
    young.attach_reader_guard(old)
    young.validate_ordering()


def test_validate_rejects_younger_dependency():
    old = arith_uop(seq=1)
    young = arith_uop(seq=2)
    old.attach_producer(young)
    with pytest.raises(AssertionError):
        old.validate_ordering()


def test_priority_swaps_exempt_from_ordering():
    """Front-inserted Swap-Stores depend on nothing; they may be younger."""
    head = arith_uop(seq=1)
    priority_store = arith_uop(seq=9)
    priority_store.priority = True
    head.attach_store_guard(priority_store)
    head.validate_ordering()


def test_none_producers_allowed():
    u = arith_uop(seq=3)
    u.attach_producer(None)
    u.validate_ordering()


def test_describe_shows_rename_state():
    u = arith_uop(seq=5)
    u.src_vvrs = (40, 41)
    u.dst_vvr = 42
    text = u.describe()
    assert "(40, 41)" in text and "42" in text
