"""Reorder buffer: in-order retirement."""

import pytest

from repro.core.rob import ReorderBuffer
from repro.core.uop import MicroOp, UopState
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.operands import data_ref


def uop(memory=False):
    if memory:
        inst = Instruction(op=Op.VLE, dst=0, vl=8, mem=data_ref("x"))
    else:
        inst = Instruction(op=Op.VADD, dst=0, srcs=(1, 2), vl=8)
    return MicroOp(inst)


def finish(u, at):
    u.state = UopState.DONE
    u.done_at = at


def test_allocate_until_full():
    rob = ReorderBuffer(capacity=2)
    rob.allocate(uop())
    rob.allocate(uop())
    assert rob.full
    with pytest.raises(RuntimeError):
        rob.allocate(uop())


def test_commit_is_in_order():
    rob = ReorderBuffer(capacity=4, commit_width=2)
    a, b, c = uop(), uop(), uop()
    for u in (a, b, c):
        rob.allocate(u)
    finish(b, 5)
    finish(c, 5)
    # The head (a) is not done: nothing can commit.
    assert rob.committable(now=10) == []
    finish(a, 7)
    assert rob.committable(now=10) == [a, b]  # commit width caps at 2


def test_committable_respects_time():
    rob = ReorderBuffer()
    a = uop()
    rob.allocate(a)
    finish(a, 20)
    assert rob.committable(now=10) == []
    assert rob.committable(now=20) == [a]


def test_retire_out_of_order_rejected():
    rob = ReorderBuffer()
    a, b = uop(), uop()
    rob.allocate(a)
    rob.allocate(b)
    finish(a, 0)
    finish(b, 0)
    with pytest.raises(RuntimeError):
        rob.retire(b, now=1)


def test_retire_updates_counters_and_state():
    rob = ReorderBuffer()
    a = uop()
    rob.allocate(a)
    finish(a, 0)
    rob.retire(a, now=3)
    assert a.state is UopState.COMMITTED
    assert a.committed_at == 3
    assert rob.total_committed == 1
    assert rob.occupancy == 0


def test_inflight_memory_scan():
    rob = ReorderBuffer()
    rob.allocate(uop(memory=False))
    assert not rob.has_inflight_memory()
    m = uop(memory=True)
    rob.allocate(m)
    assert rob.oldest_uncommitted_memory() is m


def test_flush_returns_everything_in_order():
    rob = ReorderBuffer()
    a, b = uop(), uop()
    rob.allocate(a)
    rob.allocate(b)
    assert rob.flush() == [a, b]
    assert rob.occupancy == 0
