"""Second-level mapping: PRMT / VRLT / PFRL."""

import pytest

from repro.core.vrf_mapping import VRFMapping


def test_initial_state():
    m = VRFMapping(64, 8)
    assert m.free_count == 8
    assert m.resident_vvrs() == []
    assert not m.in_pvrf(0)
    assert not m.in_mvrf(0)


def test_allocate_maps_and_tracks_owner():
    m = VRFMapping(64, 8)
    preg = m.allocate(10)
    assert m.in_pvrf(10)
    assert m.preg_of(10) == preg
    assert m.owner_of(preg) == 10
    assert m.free_count == 7


def test_double_allocation_rejected():
    m = VRFMapping(64, 8)
    m.allocate(10)
    with pytest.raises(RuntimeError):
        m.allocate(10)


def test_allocate_with_empty_pfrl_rejected():
    m = VRFMapping(64, 2)
    m.allocate(0)
    m.allocate(1)
    with pytest.raises(RuntimeError):
        m.allocate(2)


def test_evict_moves_to_mvrf():
    m = VRFMapping(64, 8)
    preg = m.allocate(10)
    assert m.evict(10) == preg
    assert not m.in_pvrf(10)
    assert m.in_mvrf(10)  # the value now lives in memory
    assert m.free_count == 8
    with pytest.raises(KeyError):
        m.preg_of(10)


def test_release_clears_everything():
    m = VRFMapping(64, 8)
    m.allocate(10)
    m.release(10)
    assert not m.in_pvrf(10) and not m.in_mvrf(10)
    assert m.free_count == 8
    # Releasing an M-VRF resident clears its memory state too.
    m.allocate(11)
    m.evict(11)
    assert m.release(11) is None
    assert not m.in_mvrf(11)


def test_reallocation_after_evict_clears_mvrf_flag():
    m = VRFMapping(64, 8)
    m.allocate(10)
    m.evict(10)
    m.allocate(10)  # Swap-Load brings it back
    assert m.in_pvrf(10) and not m.in_mvrf(10)


def test_invariant_check_passes_for_legal_state():
    m = VRFMapping(64, 8)
    for vvr in range(5):
        m.allocate(vvr)
    m.evict(2)
    m.invariant_check()


def test_more_physical_than_vvrs_rejected():
    with pytest.raises(ValueError):
        VRFMapping(8, 16)
