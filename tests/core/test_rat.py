"""First-level renaming: RAT + FRL."""

import pytest

from repro.core.rat import RenameTable


def test_initial_identity_mapping():
    rat = RenameTable(32, 64)
    assert rat.lookup(0) == 0
    assert rat.lookup(31) == 31
    assert rat.free_count == 32


def test_rename_destination_allocates_fresh_vvr():
    rat = RenameTable(32, 64)
    new, old = rat.rename_destination(5)
    assert old == 5
    assert new == 32  # first FRL entry
    assert rat.lookup(5) == new


def test_sources_follow_current_mapping():
    rat = RenameTable(32, 64)
    new, _ = rat.rename_destination(3)
    assert rat.rename_sources((3, 4)) == (new, 4)


def test_frl_exhaustion_stalls():
    """§II: the FRL running dry is what stalls the scalar core."""
    rat = RenameTable(4, 8)
    for _ in range(4):
        rat.rename_destination(0)
    assert not rat.can_rename_dst()
    with pytest.raises(RuntimeError):
        rat.rename_destination(0)


def test_commit_recycles_old_vvr():
    rat = RenameTable(4, 8)
    new, old = rat.rename_destination(1)
    before = rat.free_count
    rat.commit(1, new, old)
    assert rat.free_count == before + 1
    # The recycled VVR comes back around eventually.
    seen = {rat.rename_destination(0)[0] for _ in range(before + 1)}
    assert old in seen


def test_recover_restores_retirement_state():
    rat = RenameTable(4, 16)
    committed_new, committed_old = rat.rename_destination(0)
    rat.commit(0, committed_new, committed_old)
    # Two speculative renames that never commit.
    rat.rename_destination(0)
    rat.rename_destination(1)
    rat.recover()
    assert rat.lookup(0) == committed_new
    assert rat.lookup(1) == 1
    # Every VVR not mapped by the retirement RAT is free again.
    assert rat.free_count == 16 - 4


def test_live_vvrs():
    rat = RenameTable(4, 8)
    new, _ = rat.rename_destination(2)
    assert rat.live_vvrs() == {0, 1, new, 3}


def test_needs_enough_vvrs():
    with pytest.raises(ValueError):
        RenameTable(32, 16)
