"""Machine configurations: Tables I, II, III."""

import pytest

from repro.core.config import (
    MachineMode,
    ava_config,
    baseline_config,
    native_config,
    pvrf_registers,
    rg_config,
    table1_rows,
    with_physical_registers,
)


def test_table1_exact():
    """Table I verbatim."""
    assert table1_rows() == [(64, 16), (32, 32), (21, 48), (16, 64),
                             (12, 80), (10, 96), (9, 112), (8, 128)]


def test_pvrf_registers_bounds():
    assert pvrf_registers(16) == 64
    assert pvrf_registers(8) == 64  # capped at the renamed-register count
    with pytest.raises(ValueError):
        pvrf_registers(0)
    with pytest.raises(ValueError):
        pvrf_registers(2048)


def test_native_vrf_scales_with_mvl():
    """Table II: VRF 8 KB (X1) through 64 KB (X8)."""
    sizes = [native_config(s).vrf_bytes // 1024 for s in (1, 2, 3, 4, 8)]
    assert sizes == [8, 16, 24, 32, 64]


def test_ava_vrf_is_always_8kb():
    for scale in (1, 2, 3, 4, 8):
        cfg = ava_config(scale)
        # The usable capacity is n_physical x MVL; the odd MVLs (48, 80...)
        # leave a sliver of the 8 KB structure unused (Table I rounds down).
        assert 0.95 * 8 * 1024 <= cfg.vrf_bytes <= 8 * 1024
        assert cfg.n_logical == 32
        assert cfg.n_vvr == 64


def test_ava_mvrf_holds_the_remainder():
    cfg = ava_config(8)
    assert cfg.two_level
    assert cfg.n_physical == 8
    # 56 VVRs x 128 elements x 8 bytes.
    assert cfg.mvrf_bytes == 56 * 128 * 8


def test_ava_x1_is_single_level():
    cfg = ava_config(1)
    assert not cfg.two_level
    assert cfg.mvrf_bytes == 0


def test_rg_divides_architectural_registers():
    """§II: LMUL divides both logical and physical registers."""
    for lmul in (1, 2, 4, 8):
        cfg = rg_config(lmul)
        assert cfg.n_logical == 32 // lmul
        assert cfg.n_physical == 64 // lmul
        assert cfg.mvl == 16 * lmul
        assert cfg.mode is MachineMode.RG
        assert not cfg.two_level


def test_rg_rejects_illegal_lmul():
    with pytest.raises(ValueError):
        rg_config(3)


def test_native_rejects_illegal_scale():
    with pytest.raises(ValueError):
        native_config(5)


def test_baseline_is_native_x1():
    assert baseline_config().name == "NATIVE X1"
    assert baseline_config().mvl == 16


def test_ablation_override():
    cfg = with_physical_registers(ava_config(8), 12)
    assert cfg.n_physical == 12
    assert "12-preg" in cfg.name


def test_describe_mentions_mvrf_only_when_two_level():
    assert "M-VRF" in ava_config(8).describe()
    assert "M-VRF" not in native_config(8).describe()
