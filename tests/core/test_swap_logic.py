"""Swap Logic victim selection."""

from repro.core.rac import RegisterAccessCounters
from repro.core.swap import SwapLogic, VictimPolicy
from repro.core.vrf import TwoLevelVRF
from repro.core.vrf_mapping import VRFMapping


def make_logic(policy=VictimPolicy.RAC_MIN, n_vvr=16, n_phys=4):
    mapping = VRFMapping(n_vvr, n_phys)
    rac = RegisterAccessCounters(n_vvr)
    vrf = TwoLevelVRF(n_vvr, n_phys, 16)
    return SwapLogic(mapping, rac, vrf, policy=policy), mapping, rac, vrf


def fill(mapping, logic, vvrs):
    for vvr in vvrs:
        mapping.allocate(vvr)
        logic.note_allocation(vvr)


def test_min_count_victim_selected():
    logic, mapping, rac, _ = make_logic()
    fill(mapping, logic, [0, 1, 2, 3])
    for vvr, count in ((0, 3), (1, 1), (2, 2), (3, 5)):
        for _ in range(count):
            rac.increment(vvr)
    assert logic.select_victim([]) == 1


def test_excluded_vvrs_never_chosen():
    """The paper's deadlock rule: never evict the instruction's operands."""
    logic, mapping, rac, _ = make_logic()
    fill(mapping, logic, [0, 1, 2])
    for vvr in (0, 1, 2):
        rac.increment(vvr)
    assert logic.select_victim([0, 1]) == 2
    assert logic.select_victim([0, 1, 2]) is None


def test_invalid_values_never_chosen():
    """A VVR with an in-flight producer must not be stored to memory."""
    logic, mapping, rac, vrf = make_logic()
    fill(mapping, logic, [0, 1])
    rac.increment(0)
    rac.increment(1)
    vrf.mark_pending(0)
    assert logic.select_victim([]) == 1


def test_zero_count_not_a_swap_victim():
    """Count 0 means aggressive reclamation, not a swap."""
    logic, mapping, rac, _ = make_logic()
    fill(mapping, logic, [0, 1])
    rac.increment(1)
    assert logic.select_victim([]) == 1
    assert logic.reclaimable_vvr([]) == 0


def test_reclaimable_requires_valid_data():
    logic, mapping, rac, vrf = make_logic()
    fill(mapping, logic, [0])
    vrf.mark_pending(0)
    assert logic.reclaimable_vvr([]) is None


def test_queued_reader_deprioritised():
    logic, mapping, rac, _ = make_logic()
    fill(mapping, logic, [0, 1])
    rac.increment(0)
    for _ in range(4):
        rac.increment(1)
    # Plain RAC-min would choose 0; a queued reader flips the choice.
    assert logic.select_victim([], has_queued_reader=lambda v: v == 0) == 1


def test_clean_copy_preferred():
    logic, mapping, rac, vrf = make_logic()
    fill(mapping, logic, [0, 1])
    rac.increment(0)
    for _ in range(4):
        rac.increment(1)
    vrf.swap_out(1, mapping.preg_of(1))  # VVR 1 has a valid M-VRF copy
    assert logic.select_victim([], is_clean=vrf.has_mvrf_copy) == 1


def test_fifo_policy_evicts_oldest_allocation():
    logic, mapping, rac, _ = make_logic(policy=VictimPolicy.FIFO)
    fill(mapping, logic, [5, 6, 7])
    for vvr in (5, 6, 7):
        rac.increment(vvr)
    assert logic.select_victim([]) == 5
    logic.note_release(5)
    mapping.release(5)
    assert logic.select_victim([]) == 6


def test_round_robin_rotates():
    logic, mapping, rac, _ = make_logic(policy=VictimPolicy.ROUND_ROBIN)
    fill(mapping, logic, [0, 1, 2])
    for vvr in (0, 1, 2):
        rac.increment(vvr)
    first = logic.select_victim([])
    second = logic.select_victim([])
    assert first != second
