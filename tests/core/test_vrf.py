"""Two-level VRF: valid bits, value transport, dirty-bit, generations."""

import numpy as np

from repro.core.vrf import TwoLevelVRF


def test_valid_bit_lifecycle():
    vrf = TwoLevelVRF(8, 4, 16)
    assert vrf.is_valid(3)
    vrf.mark_pending(3)
    assert not vrf.is_valid(3)
    vrf.mark_valid(3)
    assert vrf.is_valid(3)


def test_valid_bit_recovery_checkpoint():
    """§III.D: the retirement copy is updated at commit, restored on squash."""
    vrf = TwoLevelVRF(8, 4, 16)
    vrf.mark_pending(1)
    vrf.commit_valid(1)  # retirement says pending
    vrf.mark_valid(1)  # speculative completion
    vrf.recover_valid()
    assert not vrf.is_valid(1)


def test_functional_value_roundtrip_through_mvrf():
    vrf = TwoLevelVRF(8, 4, 8, functional=True)
    data = np.arange(8, dtype=float)
    vrf.write_preg(2, data, 8)
    vrf.swap_out(5, 2)  # VVR 5 lives in preg 2; store it
    vrf.write_preg(2, np.zeros(8), 8)  # preg reused, overwritten
    vrf.swap_in(5, 3)  # bring VVR 5 back into preg 3
    assert np.allclose(vrf.read_preg(3, 8), data)


def test_partial_vl_write_preserves_tail():
    vrf = TwoLevelVRF(8, 4, 8, functional=True)
    vrf.write_preg(0, np.full(8, 7.0), 8)
    vrf.write_preg(0, np.full(4, 1.0), 4)
    out = vrf.read_preg(0, 8)
    assert np.allclose(out, [1, 1, 1, 1, 7, 7, 7, 7])


def test_unwritten_preg_reads_zero():
    vrf = TwoLevelVRF(8, 4, 8, functional=True)
    assert np.allclose(vrf.read_preg(1, 8), np.zeros(8))


def test_counters_track_without_functional_mode():
    vrf = TwoLevelVRF(8, 4, 16, functional=False)
    vrf.write_preg(0, None, 16)
    vrf.read_preg(0, 16)
    vrf.swap_out(1, 0)
    vrf.swap_in(1, 2)
    assert vrf.pvrf_writes == 16 + 16  # write + swap_in fill
    assert vrf.pvrf_reads == 16 + 16  # read + swap_out drain
    assert vrf.mvrf_writes == 16
    assert vrf.mvrf_reads == 16
    assert vrf.total_element_traffic == 96


def test_dirty_bit_set_by_swap_out_cleared_by_drop():
    vrf = TwoLevelVRF(8, 4, 16)
    assert not vrf.has_mvrf_copy(3)
    vrf.swap_out(3, 0)
    assert vrf.has_mvrf_copy(3)
    vrf.swap_in(3, 1)  # the copy stays valid after a reload
    assert vrf.has_mvrf_copy(3)
    vrf.drop_mvrf(3)
    assert not vrf.has_mvrf_copy(3)


def test_generation_bumped_on_drop():
    vrf = TwoLevelVRF(8, 4, 16)
    g0 = vrf.generation(2)
    vrf.drop_mvrf(2)
    assert vrf.generation(2) == g0 + 1
    vrf.drop_mvrf(2)
    assert vrf.generation(2) == g0 + 2
