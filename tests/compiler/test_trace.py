"""Strip-mine unrolling."""

import pytest

from repro.compiler.trace import StripSchedule, body_pressure, unroll_kernel
from repro.isa.builder import KernelBuilder
from repro.isa.opcodes import Op


def simple_body():
    kb = KernelBuilder()
    c = kb.const(2.0)
    x = kb.load("x")
    kb.store(x + c, "y")
    return kb.build()


def test_schedule_covers_all_elements():
    sched = StripSchedule.for_elements(100, 16)
    assert sched.total_elements == 100
    assert sched.n_iterations == 7
    assert sched.strips[-1].vl == 4  # the tail strip


def test_schedule_rejects_bad_inputs():
    with pytest.raises(ValueError):
        StripSchedule.for_elements(0, 16)
    with pytest.raises(ValueError):
        StripSchedule.for_elements(16, 0)


def test_unroll_emits_preamble_once():
    body = simple_body()
    trace = unroll_kernel(body, StripSchedule.for_elements(64, 16), 16)
    vfmvs = [i for i in trace if i.op is Op.VFMV_VF]
    assert len(vfmvs) == 1
    assert vfmvs[0].vl == 16  # preamble runs MVL wide


def test_unroll_is_ssa():
    body = simple_body()
    trace = unroll_kernel(body, StripSchedule.for_elements(64, 16), 16)
    defs = [i.dst for i in trace if i.dst is not None]
    assert len(defs) == len(set(defs))


def test_invariants_shared_across_iterations():
    body = simple_body()
    trace = unroll_kernel(body, StripSchedule.for_elements(48, 16), 16)
    const_reg = next(i.dst for i in trace if i.op is Op.VFMV_VF)
    adds = [i for i in trace if i.op is Op.VADD_VF or i.op is Op.VADD]
    assert adds
    assert all(const_reg in i.srcs for i in adds)


def test_memory_rebased_per_strip():
    body = simple_body()
    trace = unroll_kernel(body, StripSchedule.for_elements(48, 16), 16)
    loads = [i for i in trace if i.op is Op.VLE]
    assert [ld.mem.base_elem for ld in loads] == [0, 16, 32]


def test_strided_memory_rebased_by_stride():
    kb = KernelBuilder()
    v = kb.load("m", stride=3)
    kb.store(v, "out")
    trace = unroll_kernel(kb.build(), StripSchedule.for_elements(32, 16), 16)
    loads = [i for i in trace if i.op is Op.VLSE]
    assert [ld.mem.base_elem for ld in loads] == [0, 48]


def test_vl_stamped_per_strip():
    body = simple_body()
    trace = unroll_kernel(body, StripSchedule.for_elements(40, 16), 16)
    stores = [i for i in trace if i.op is Op.VSE]
    assert [s.vl for s in stores] == [16, 16, 8]


def test_scalar_blocks_inserted_per_iteration():
    body = simple_body()
    sched = StripSchedule.for_elements(64, 16, scalar_cycles=5.0)
    trace = unroll_kernel(body, sched, 16)
    blocks = [i for i in trace if i.is_scalar]
    assert len(blocks) == 4
    assert all(b.scalar == 5.0 for b in blocks)


def test_body_pressure_includes_invariants():
    kb = KernelBuilder()
    consts = [kb.const(float(i)) for i in range(5)]
    x = kb.load("x")
    acc = x + consts[0]
    for c in consts[1:]:
        acc = acc + c
    kb.store(acc, "y")
    assert body_pressure(kb.build()) >= 6  # 5 invariants + live temps
