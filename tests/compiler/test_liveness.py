"""Next-use analysis and live pressure."""

import pytest

from repro.compiler.liveness import INFINITY, NextUse, live_pressure, max_pressure
from repro.isa.instructions import Instruction, scalar_block
from repro.isa.opcodes import Op
from repro.isa.operands import data_ref


def seq(*defs):
    """Build a tiny trace from (dst, srcs) pairs."""
    out = []
    for dst, srcs in defs:
        if dst is None:
            out.append(Instruction(op=Op.VSE, srcs=srcs[:1], vl=4,
                                   mem=data_ref("x")))
        elif not srcs:
            out.append(Instruction(op=Op.VLE, dst=dst, vl=4,
                                   mem=data_ref("x")))
        elif len(srcs) == 1:
            out.append(Instruction(op=Op.VMV, dst=dst, srcs=srcs, vl=4))
        else:
            out.append(Instruction(op=Op.VADD, dst=dst, srcs=srcs[:2], vl=4))
    return out


def test_next_use_positions():
    trace = seq((0, ()), (1, (0,)), (None, (1,)), (2, (0,)))
    nu = NextUse.analyse(trace)
    assert nu.peek(0, 0) == 1
    assert nu.peek(0, 2) == 3
    assert nu.peek(0, 4) == INFINITY
    assert nu.peek(1, 0) == 2
    assert nu.use_count(0) == 2
    assert nu.use_count(99) == 0


def test_live_pressure_simple_chain():
    trace = seq((0, ()), (1, (0,)), (None, (1,)))
    # At inst 1 both 0 (being read) and 1 (being written) are live.
    assert live_pressure(trace) == [1, 2, 1]
    assert max_pressure(trace) == 2


def test_pressure_counts_overlapping_ranges():
    trace = seq((0, ()), (1, ()), (2, ()), (3, (0, 1)), (None, (2,)),
                (None, (3,)))
    # At the VADD, registers 0 and 1 are read, 2 is live-through and 3 is
    # being defined: four simultaneously-live registers.
    assert max_pressure(trace) == 4


def test_never_read_value_still_occupies_register():
    trace = seq((0, ()), (1, ()), (None, (1,)))
    assert live_pressure(trace)[0] == 1


def test_scalar_blocks_are_transparent():
    trace = [scalar_block(4.0)] + seq((0, ()), (None, (0,)))
    assert max_pressure(trace) == 1


def test_use_before_def_rejected():
    trace = seq((None, (5,)))
    with pytest.raises(ValueError):
        live_pressure(trace)


def test_empty_trace():
    assert max_pressure([]) == 0
