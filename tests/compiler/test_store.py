"""The persistent trace store: exact round-trips, content keys, fallbacks.

The contract the compile-once/replay-many design rests on: a stored trace
is *exactly* the program that was compiled — serialize -> load -> simulate
produces byte-identical stats JSON and functional buffers versus a fresh
compile — and any damaged or stale entry silently degrades to a recompile
(a trace miss), never an error.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.signature import CompileSignature
from repro.compiler.store import TRACE_SCHEMA, TraceStore, trace_key
from repro.core.config import ava_config, native_config
from repro.experiments.engine import (Cell, CellExecutor,
                                      program_fingerprint)
from repro.sim.simulator import Simulator
from repro.workloads.registry import ALL_WORKLOAD_NAMES, get_workload

#: MVL 16 / 64 / 128 — short, mid and the most swap-intensive point; the
#: same golden grid the extended-suite check=True tests sweep.
MVL_GRID = [native_config(1), ava_config(4), ava_config(8)]


def _functional_run(workload, config, program):
    sim = Simulator(config, program, functional=True)
    rng = np.random.default_rng(42)
    data = workload.init_data(rng)
    for name, values in data.items():
        sim.set_data(name, values)
    return sim.run()


# ---------------------------------------------------------------------------
# round-trip byte-identity over the golden 10-workload x MVL grid
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_WORKLOAD_NAMES)
def test_round_trip_is_byte_identical(name, tmp_path):
    """serialize -> load -> simulate == fresh compile -> simulate, exactly."""
    store = TraceStore(tmp_path / "traces")
    for config in MVL_GRID:
        workload = get_workload(name)
        fresh = workload.compile(config)
        key = store.key(workload, fresh.signature)
        store.put_trace(key, fresh)
        loaded = store.load(key)
        assert loaded is not None
        # The artifact itself is exact: same fingerprint, same JSON form,
        # same allocation record, stable through a second serialization.
        assert (program_fingerprint(loaded.program)
                == program_fingerprint(fresh.program))
        assert (json.dumps(loaded.program.to_dict(), sort_keys=True)
                == json.dumps(fresh.program.to_dict(), sort_keys=True))
        assert loaded.allocation.to_dict() == fresh.allocation.to_dict()
        assert loaded.signature == fresh.signature

        # And so is its execution: byte-identical stats JSON and exactly
        # equal functional output buffers.
        fresh_result = _functional_run(workload, config, fresh.program)
        loaded_result = _functional_run(workload, config, loaded.program)
        assert (json.dumps(fresh_result.stats.to_dict(), sort_keys=True)
                == json.dumps(loaded_result.stats.to_dict(), sort_keys=True))
        for buf in fresh.program.buffers:
            assert np.array_equal(fresh_result.buffer(buf),
                                  loaded_result.buffer(buf))


# ---------------------------------------------------------------------------
# property: exact round-trip over random valid compile signatures
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(mvl=st.integers(min_value=1, max_value=256),
       n_logical=st.integers(min_value=8, max_value=32))
def test_round_trip_over_random_signatures(tmp_path_factory, mvl, n_logical):
    signature = CompileSignature(mvl=mvl, n_logical=n_logical)
    workload = get_workload("axpy")
    store = TraceStore(tmp_path_factory.mktemp("traces"))
    fresh = workload.compile(signature)
    key = store.key(workload, signature)
    store.put_trace(key, fresh)
    loaded = store.load(key)
    assert loaded is not None
    assert loaded.signature == signature
    assert loaded.program.to_dict() == fresh.program.to_dict()
    assert loaded.allocation.to_dict() == fresh.allocation.to_dict()
    assert (program_fingerprint(loaded.program)
            == program_fingerprint(fresh.program))


# ---------------------------------------------------------------------------
# the content address
# ---------------------------------------------------------------------------
def test_key_separates_signatures_and_workload_shapes():
    workload = get_workload("axpy")
    sig = CompileSignature(mvl=64, n_logical=32)
    assert trace_key(workload, sig) == trace_key(get_workload("axpy"), sig)
    assert (trace_key(workload, sig)
            != trace_key(workload, CompileSignature(mvl=128, n_logical=32)))
    assert (trace_key(workload, sig)
            != trace_key(workload, CompileSignature(mvl=64, n_logical=16)))
    shrunk = get_workload("axpy")
    shrunk.n_elements = 128
    assert trace_key(workload, sig) != trace_key(shrunk, sig)
    assert (trace_key(workload, sig)
            != trace_key(get_workload("somier"), sig))


def test_native_and_ava_share_a_key_per_scale():
    """The narrowed compile key: simulation-side axes never reach it."""
    workload = get_workload("axpy")
    assert (trace_key(workload, CompileSignature.from_config(native_config(4)))
            == trace_key(workload,
                         CompileSignature.from_config(ava_config(4))))


# ---------------------------------------------------------------------------
# damaged / stale entries degrade to recompiles, never errors
# ---------------------------------------------------------------------------
def _warm_store_for(cell, root):
    store = TraceStore(root)
    workload = cell.resolve_workload()
    compiled = workload.compile(cell.config)
    key = store.key(workload, compiled.signature)
    store.put_trace(key, compiled)
    return store, key


def _wrapped(payload: dict) -> str:
    """A properly checksummed store entry, as ``put`` would write it."""
    import hashlib
    body = json.dumps(payload)
    return json.dumps({"sha256": hashlib.sha256(body.encode()).hexdigest(),
                       "body": body})


def _bitrot(path):
    """Flip a body byte under the original checksum: the quarantine path."""
    raw = path.read_text()
    flipped = "0" if raw[-10] != "0" else "1"
    path.write_text(raw[:-10] + flipped + raw[-9:])


@pytest.mark.parametrize("damage", [
    lambda path: path.write_text("not json {"),
    lambda path: path.write_text(path.read_text()[:40]),  # truncated
    _bitrot,
    lambda path: path.write_text(_wrapped(
        {"schema": TRACE_SCHEMA - 1, "program": {}, "allocation": {}})),
    lambda path: path.write_text(_wrapped({"schema": TRACE_SCHEMA,
                                           "program": {"insts": [
                                               {"op": "vbogus", "vl": 1}]},
                                           "allocation": {}})),
    lambda path: path.write_text(json.dumps(  # pre-checksum format
        {"schema": TRACE_SCHEMA - 1, "program": {}, "allocation": {}})),
], ids=["garbage", "truncated", "bitrot", "stale-schema", "mangled-program",
        "legacy-unwrapped"])
def test_damaged_entries_fall_back_to_a_clean_recompile(tmp_path, damage):
    cell = Cell(workload="axpy", config=native_config(1))
    store, key = _warm_store_for(cell, tmp_path / "traces")
    damage(store.path(key))
    assert store.load(key) is None  # a miss, not an exception

    executor = CellExecutor(traces=store)
    result = executor.run_one(cell)
    assert result.stats.cycles > 0
    assert executor.stats.trace_hits == 0
    assert executor.stats.trace_misses == 1  # counted as a miss...
    assert executor.stats.compiles == 1  # ...and recompiled cleanly
    # The recompile overwrote the damaged entry: the next executor hits.
    rerun = CellExecutor(traces=TraceStore(store.root))
    rerun.run_one(cell)
    assert rerun.stats.trace_hits == 1
    assert rerun.stats.compiles == 0


def test_worker_falls_back_when_a_ref_target_vanishes(tmp_path):
    """A TraceRef whose entry was pruned between dispatch and execution
    recompiles in-worker instead of failing the cell."""
    from repro.experiments.engine import TraceRef, _execute_cell

    cell = Cell(workload="axpy", config=native_config(1))
    store, key = _warm_store_for(cell, tmp_path / "traces")
    store.path(key).unlink()
    payload = _execute_cell((cell, TraceRef(root=str(store.root), key=key)))
    assert payload["stats"]["cycles"] > 0


# ---------------------------------------------------------------------------
# cross-executor persistence (the whole point)
# ---------------------------------------------------------------------------
def test_traces_persist_across_executors(tmp_path):
    cells = [Cell(workload="axpy", config=config) for config in MVL_GRID]
    first = CellExecutor(traces=TraceStore(tmp_path / "traces"))
    results = first.run(cells)
    assert first.stats.compiles == len(MVL_GRID)
    assert first.stats.trace_misses == len(MVL_GRID)

    second = CellExecutor(traces=TraceStore(tmp_path / "traces"))
    replayed = second.run(cells)
    assert second.stats.compiles == 0
    assert second.stats.trace_hits == len(MVL_GRID)
    for a, b in zip(results, replayed):
        assert (json.dumps(a.stats.to_dict(), sort_keys=True)
                == json.dumps(b.stats.to_dict(), sort_keys=True))
