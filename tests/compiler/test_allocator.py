"""Belady register allocation with spill insertion."""

import pytest

from repro.compiler.allocator import allocate
from repro.compiler.liveness import max_pressure
from repro.isa.instructions import Instruction, Tag
from repro.isa.opcodes import Op
from repro.isa.operands import AddressSpace, data_ref


def chain(n_values: int, fan_in: int = 2):
    """A trace defining n_values and summing them at the end."""
    trace = [Instruction(op=Op.VLE, dst=i, vl=8, mem=data_ref("x", i * 8))
             for i in range(n_values)]
    acc = n_values
    prev = 0
    for i in range(1, n_values):
        trace.append(Instruction(op=Op.VADD, dst=acc, srcs=(prev, i), vl=8))
        prev = acc
        acc += 1
    trace.append(Instruction(op=Op.VSE, srcs=(prev,), vl=8,
                             mem=data_ref("x")))
    return trace


def test_no_spills_when_supply_covers_pressure():
    trace = chain(6)
    result = allocate(trace, n_regs=8, mvl=16)
    assert result.spill_free
    assert result.max_pressure <= 8
    assert result.registers_used <= 8


def test_spills_emitted_when_pressure_exceeds_supply():
    trace = chain(12)
    assert max_pressure(trace) > 4
    result = allocate(trace, n_regs=4, mvl=16)
    assert result.spill_loads > 0
    assert result.spill_stores > 0
    assert result.spill_slots > 0


def test_spill_code_uses_mvl_width():
    """§II.A: spill code always runs with VL = MVL."""
    trace = chain(12)
    result = allocate(trace, n_regs=4, mvl=64)
    spills = [i for i in result.insts if i.tag is Tag.SPILL]
    assert spills
    assert all(i.vl == 64 for i in spills)
    assert all(i.mem.space is AddressSpace.SPILL for i in spills)


def test_output_never_references_out_of_range_registers():
    result = allocate(chain(12), n_regs=4, mvl=16)
    for inst in result.insts:
        for reg in inst.registers:
            assert 0 <= reg < 4


def test_allocated_trace_preserves_instruction_order():
    trace = chain(5)
    result = allocate(trace, n_regs=8, mvl=16)
    kept = [i for i in result.insts if i.tag is Tag.NORMAL]
    assert [i.op for i in kept] == [i.op for i in trace]


def test_ssa_violation_rejected():
    # Redefining a *live* virtual register is a broken trace.
    trace = [Instruction(op=Op.VLE, dst=0, vl=8, mem=data_ref("x")),
             Instruction(op=Op.VADD, dst=1, srcs=(0, 0), vl=8),
             Instruction(op=Op.VLE, dst=0, vl=8, mem=data_ref("x")),
             Instruction(op=Op.VADD, dst=2, srcs=(0, 1), vl=8),
             Instruction(op=Op.VSE, srcs=(2,), vl=8, mem=data_ref("x"))]
    with pytest.raises(ValueError):
        allocate(trace, n_regs=8, mvl=16)


def test_use_before_def_rejected():
    trace = [Instruction(op=Op.VSE, srcs=(3,), vl=8, mem=data_ref("x"))]
    with pytest.raises(ValueError):
        allocate(trace, n_regs=8, mvl=16)


def test_minimum_register_supply_enforced():
    with pytest.raises(ValueError):
        allocate(chain(3), n_regs=1, mvl=16)


def test_value_spilled_once_reloaded_many_times():
    """SSA values keep a valid slot copy: one store, many loads."""
    trace = [Instruction(op=Op.VLE, dst=0, vl=8, mem=data_ref("x"))]
    # Interleave many fresh values with repeated far uses of register 0.
    vid = 1
    for _ in range(6):
        trace.append(Instruction(op=Op.VLE, dst=vid, vl=8, mem=data_ref("x")))
        trace.append(Instruction(op=Op.VADD, dst=vid + 1, srcs=(0, vid),
                                 vl=8))
        trace.append(Instruction(op=Op.VSE, srcs=(vid + 1,), vl=8,
                                 mem=data_ref("x")))
        vid += 2
    result = allocate(trace, n_regs=3, mvl=16)
    # SSA values keep their slot copy valid forever, so reload traffic
    # dominates store traffic.
    assert result.spill_loads >= result.spill_stores
