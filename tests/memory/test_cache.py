"""Set-associative cache model."""

import pytest

from repro.memory.cache import Cache, CacheConfig


def small_cache(assoc=2, sets=4):
    return Cache(CacheConfig("test", sets * assoc * 64, 64, assoc, latency=4))


def test_geometry():
    cfg = CacheConfig("L2", 1024 * 1024, 64, 16, 12)
    assert cfg.n_sets == 1024


def test_geometry_must_divide():
    with pytest.raises(ValueError):
        CacheConfig("bad", 1000, 64, 8)


def test_cold_miss_then_hit():
    c = small_cache()
    assert not c.access(0x1000)
    assert c.access(0x1000)
    assert c.stats.reads == 2
    assert c.stats.read_misses == 1
    assert c.stats.hit_rate == pytest.approx(0.5)


def test_same_line_different_bytes_hit():
    c = small_cache()
    c.access(0x1000)
    assert c.access(0x1030)  # same 64-byte line


def test_lru_eviction():
    c = small_cache(assoc=2, sets=1)
    c.access(0x000)  # line A
    c.access(0x040)  # line B
    c.access(0x000)  # touch A -> B becomes LRU
    c.access(0x080)  # line C evicts B
    assert c.access(0x000)
    assert not c.access(0x040)  # B was evicted


def test_dirty_eviction_counts_writeback():
    c = small_cache(assoc=1, sets=1)
    c.access(0x000, write=True)
    c.access(0x040)  # evicts the dirty line
    assert c.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    c = small_cache(assoc=1, sets=1)
    c.access(0x000)
    c.access(0x040)
    assert c.stats.writebacks == 0


def test_write_allocate():
    c = small_cache()
    assert not c.access(0x2000, write=True)
    assert c.access(0x2000)
    assert c.stats.write_misses == 1


def test_set_indexing_isolates_sets():
    c = small_cache(assoc=1, sets=4)
    c.access(0 * 64)
    c.access(1 * 64)
    c.access(2 * 64)
    c.access(3 * 64)
    assert all(c.access(i * 64) for i in range(4))


def test_flush():
    c = small_cache()
    c.access(0x000, write=True)
    c.access(0x100)
    assert c.occupancy == 2
    dirty = c.flush()
    assert dirty == 1
    assert c.occupancy == 0
    assert not c.access(0x000)


def test_contains_does_not_mutate():
    c = small_cache()
    assert not c.contains(0x1000)
    c.access(0x1000)
    before = c.stats.accesses
    assert c.contains(0x1000)
    assert c.stats.accesses == before


def test_config_validates_at_construction():
    """A bad sweep preset must fail at spec-parse time, not mid-grid."""
    with pytest.raises(ValueError):
        CacheConfig("bad", 1024, 64, 8, latency=0)
    with pytest.raises(ValueError):
        CacheConfig("bad", 1024, 64, 8, latency=-4)
    with pytest.raises(ValueError):
        CacheConfig("bad", 0, 64, 8)
    with pytest.raises(ValueError):
        CacheConfig("bad", 1024, 0, 8)
    with pytest.raises(ValueError):
        CacheConfig("bad", 1024, 64, 0)
