"""Composed memory system and DRAM model."""

from repro.memory.dram import Dram, DramConfig
from repro.memory.hierarchy import MemorySystem, MemorySystemConfig


def test_table2_defaults():
    ms = MemorySystem()
    assert ms.config.l1i.size_bytes == 32 * 1024
    assert ms.config.l1d.size_bytes == 32 * 1024
    assert ms.config.l2.size_bytes == 1024 * 1024
    assert ms.config.l1d.latency == 4
    assert ms.config.l2.latency == 12
    assert ms.config.l2.line_bytes == 64  # 512-bit lines
    assert ms.vector_first_latency == 12


def test_dram_counters_and_latency():
    dram = Dram(DramConfig(latency=80, line_transfer=4))
    assert dram.read_line() == 84
    assert dram.write_line() == 4
    assert dram.accesses == 2
    dram.reset()
    assert dram.accesses == 0


def test_vector_access_miss_then_hit():
    ms = MemorySystem()
    assert ms.vector_line_access(0x8000, write=False) is True  # cold miss
    assert ms.vector_line_access(0x8000, write=False) is False
    assert ms.dram.line_reads == 1


def test_vector_write_allocates():
    ms = MemorySystem()
    assert ms.vector_line_access(0x9000, write=True) is True
    assert ms.vector_line_access(0x9000, write=False) is False


def test_scalar_read_latencies_stack():
    ms = MemorySystem()
    cold = ms.scalar_read(0x4000)
    warm = ms.scalar_read(0x4000)
    assert cold > ms.config.l1d.latency + ms.config.l2.latency
    assert warm == ms.config.l1d.latency


def test_fetch_uses_l1i():
    ms = MemorySystem()
    ms.fetch(0x100)
    warm = ms.fetch(0x100)
    assert warm == ms.config.l1i.latency
    assert ms.l1i.stats.accesses == 2
    assert ms.l1d.stats.accesses == 0


def test_l1_and_vector_share_l2():
    ms = MemorySystem()
    ms.scalar_read(0x7000)  # brings the line into L2 as well
    assert ms.vector_line_access(0x7000, write=False) is False


def test_reset_stats():
    ms = MemorySystem()
    ms.vector_line_access(0x100, False)
    ms.scalar_read(0x200)
    ms.reset_stats()
    assert ms.l2.stats.accesses == 0
    assert ms.dram.accesses == 0


def test_dram_config_validates_at_construction():
    import pytest

    from repro.memory.dram import DramConfig

    with pytest.raises(ValueError):
        DramConfig(latency=0)
    with pytest.raises(ValueError):
        DramConfig(line_transfer=0)


def test_memory_system_config_validates_members():
    import pytest

    from repro.memory.hierarchy import MemorySystemConfig

    with pytest.raises(ValueError):
        MemorySystemConfig(vector_interface_bytes=0)
    with pytest.raises(TypeError):
        MemorySystemConfig(l2="1MB")
    with pytest.raises(TypeError):
        MemorySystemConfig(dram={"latency": 80})
